(* CI bench-regression gate: compare a fresh benchmark datafile against
   the newest committed baseline and exit non-zero when a gated metric
   regressed past the threshold.  Reading, host comparability and the
   comparison semantics all live in lib/datafile (Datafile.read /
   host_mismatch / diff); this binary is the exit-code wrapper CI calls.

   Both schema-v1 datafiles and the committed pre-schema BENCH_*.json
   baselines are accepted — Datafile.read lifts the legacy format. *)

open Cmdliner

(* Newest committed BENCH_*.json by name-embedded order is not
   meaningful (revs are hashes), so "newest" means most recently
   modified; CI checkouts restore mtimes at checkout time, so there the
   workflow passes the baseline explicitly via `git log`-ordered paths.
   Locally mtime is exactly right. *)
let newest_baseline ~excluding dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f ->
         String.length f > 10
         && String.sub f 0 6 = "BENCH_"
         && Filename.check_suffix f ".json"
         && f <> Filename.basename excluding)
  |> List.map (fun f -> Filename.concat dir f)
  |> List.sort (fun a b -> compare (Unix.stat b).Unix.st_mtime (Unix.stat a).Unix.st_mtime)
  |> function
  | [] -> None
  | x :: _ -> Some x

let run baseline current threshold strict_host markdown_out =
  let baseline =
    match baseline with
    | Some b -> b
    | None -> (
        match newest_baseline ~excluding:current (Filename.dirname current) with
        | Some b -> b
        | None ->
            Format.printf "bench-gate: no committed BENCH_*.json baseline found — nothing to gate@.";
            exit 0)
  in
  Format.printf "bench-gate: %s (baseline) vs %s (current)@." baseline current;
  let load tag path =
    match Datafile.read ~path with
    | Ok t -> t
    | Error msg ->
        Format.eprintf "bench-gate: %s file: %s@." tag msg;
        exit 2
  in
  let base = load "baseline" baseline in
  let curr = load "current" current in
  let show_header tag (t : Datafile.t) =
    Format.printf "  %-8s %s@." tag
      (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) (Datafile.header_fields t)))
  in
  show_header "baseline" base;
  show_header "current" curr;
  (* Cross-host ratios are noise.  The default is a loud warning — the
     committed baselines come from developer machines while CI runs on
     shared runners, and that comparison is still the operator's call —
     but --strict-host turns the mismatch into a refusal. *)
  (match Datafile.host_mismatch base curr with
  | [] -> ()
  | reasons ->
      List.iter
        (fun r -> Format.printf "bench-gate: WARNING — runs are not host-comparable: %s@." r)
        reasons;
      if strict_host then begin
        Format.eprintf "bench-gate: refusing cross-host comparison (--strict-host)@.";
        exit 2
      end);
  (match markdown_out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Datafile.markdown_diff ~threshold base curr);
      close_out oc;
      Format.printf "bench-gate: wrote markdown diff to %s@." path);
  let verdicts = Datafile.diff ~threshold base curr in
  Datafile.pp_diff Format.std_formatter ~threshold verdicts;
  exit (if Datafile.any_regression verdicts then 1 else 0)

let baseline_term =
  Arg.(value & opt (some file) None
       & info [ "baseline" ]
           ~doc:"Baseline datafile (schema-v1 or legacy BENCH_<rev>.json).  Default: the most \
                 recently modified BENCH_*.json next to $(b,--current), excluding the current \
                 file itself.")

let current_term =
  Arg.(required & opt (some file) None
       & info [ "current" ] ~doc:"Freshly produced datafile to judge.")

let threshold_term =
  Arg.(value & opt float 0.25
       & info [ "threshold" ]
           ~doc:"Allowed relative regression on gated (gen.*/lp.*/round.*/sweep.*/campaign.*/\
                 serve.*) metrics (0.25 = 25%).")

let strict_host_term =
  Arg.(value & flag
       & info [ "strict-host" ]
           ~doc:"Refuse (exit 2) instead of warning when the two runs record different \
                 jobs/cpus/ocaml machine contexts.")

let markdown_term =
  Arg.(value & opt (some string) None
       & info [ "markdown" ] ~docv:"FILE"
           ~doc:"Also write the comparison as a GitHub-flavored markdown table to $(docv) \
                 (for \\$GITHUB_STEP_SUMMARY).")

let () =
  let info =
    Cmd.info "bench_gate"
      ~doc:"Fail when a gated benchmark metric regressed vs the committed baseline"
  in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(const run $ baseline_term $ current_term $ threshold_term $ strict_host_term
                $ markdown_term)))
