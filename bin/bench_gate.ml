(* CI bench-regression gate: compare a fresh BENCH_<rev>.json against
   the newest committed baseline and exit non-zero when a gen.* or lp.*
   metric regressed past the threshold.  See lib/benchgate. *)

open Cmdliner

(* Newest committed BENCH_*.json by name-embedded order is not
   meaningful (revs are hashes), so "newest" means most recently
   modified; CI checkouts restore mtimes at checkout time, so there the
   workflow passes the baseline explicitly via `git log`-ordered paths.
   Locally mtime is exactly right. *)
let newest_baseline ~excluding dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f ->
         String.length f > 10
         && String.sub f 0 6 = "BENCH_"
         && Filename.check_suffix f ".json"
         && f <> Filename.basename excluding)
  |> List.map (fun f -> Filename.concat dir f)
  |> List.sort (fun a b -> compare (Unix.stat b).Unix.st_mtime (Unix.stat a).Unix.st_mtime)
  |> function
  | [] -> None
  | x :: _ -> Some x

let run baseline current threshold =
  let baseline =
    match baseline with
    | Some b -> b
    | None -> (
        match newest_baseline ~excluding:current (Filename.dirname current) with
        | Some b -> b
        | None ->
            Format.printf "bench-gate: no committed BENCH_*.json baseline found — nothing to gate@.";
            exit 0)
  in
  Format.printf "bench-gate: %s (baseline) vs %s (current)@." baseline current;
  (* Machine context (rev, date, jobs, cpus, ocaml) is printed, never
     gated: runs from different machines are still comparable if the
     operator says so, but the mismatch should be visible in the log. *)
  let show_header tag path =
    match Benchgate.parse_header_file path with
    | exception _ -> ()
    | fields ->
        Format.printf "  %-8s %s@." tag
          (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) fields))
  in
  show_header "baseline" baseline;
  show_header "current" current;
  match (Benchgate.parse_file baseline, Benchgate.parse_file current) with
  | exception Sys_error msg ->
      Format.eprintf "bench-gate: %s@." msg;
      exit 2
  | exception Benchgate.Parse_error msg ->
      Format.eprintf "bench-gate: malformed bench JSON: %s@." msg;
      exit 2
  | base, curr ->
      let verdicts = Benchgate.compare_metrics ~threshold base curr in
      Benchgate.pp_report Format.std_formatter ~threshold verdicts;
      exit (if Benchgate.any_regression verdicts then 1 else 0)

let baseline_term =
  Arg.(value & opt (some file) None
       & info [ "baseline" ]
           ~doc:"Baseline BENCH_<rev>.json.  Default: the most recently modified BENCH_*.json \
                 next to $(b,--current), excluding the current file itself.")

let current_term =
  Arg.(required & opt (some file) None
       & info [ "current" ] ~doc:"Freshly produced BENCH_<rev>.json to judge.")

let threshold_term =
  Arg.(value & opt float 0.25
       & info [ "threshold" ]
           ~doc:"Allowed relative regression on gen.* and lp.* metrics (0.25 = 25%).")

let () =
  let info =
    Cmd.info "bench_gate"
      ~doc:"Fail when a gen.*/lp.* benchmark metric regressed vs the committed baseline"
  in
  exit (Cmd.eval (Cmd.v info Term.(const run $ baseline_term $ current_term $ threshold_term)))
