(* Serving-path driver: replay a seeded workload mix through the
   zero-allocation kernel pipeline (lib/serve) and report throughput and
   per-call latency percentiles — the SLO view of the library the
   paper's §4.3 batch harness measures as calls/sec.

   Exit status: 0 on success, 1 if --check finds a kernel/scalar
   mismatch, 2 if the (target, function) pair has no serving kernel
   (posits, non-standard term shapes). *)

module K = Serve.Kernel
module R = Serve.Run
module W = Serve.Workload

let target_of_name = function
  | "float32" -> Some Funcs.Specs.float32
  | "bfloat16" -> Some Funcs.Specs.bfloat16
  | "float16" -> Some Funcs.Specs.float16
  | "float34" -> Some Funcs.Specs.float34
  | "bfloat18" -> Some Funcs.Specs.bfloat18
  | "float18" -> Some Funcs.Specs.float18
  | _ -> None

let quality_of_name = function
  | "draft" -> Some Funcs.Libm.Draft
  | "quick" -> Some Funcs.Libm.Quick
  | "full" -> Some Funcs.Libm.Full
  | _ -> None

let run jobs tname fname mname mixname n batches seed check qname prog datafile =
  (match jobs with Some j -> Parallel.set_jobs j | None -> ());
  let die2 msg =
    prerr_endline msg;
    exit 2
  in
  let base =
    match target_of_name tname with
    | Some t -> t
    | None -> die2 (Printf.sprintf "serve: no serving kernel for target %s" tname)
  in
  let mode =
    match Fp.Rounding_mode.of_string mname with
    | Some m -> m
    | None -> die2 (Printf.sprintf "serve: unknown rounding mode %s" mname)
  in
  let mix =
    match W.mix_of_string mixname with
    | Some m -> m
    | None -> die2 (Printf.sprintf "serve: unknown mix %s (uniform|hardcase|subnormal)" mixname)
  in
  let quality =
    match quality_of_name qname with
    | Some q -> q
    | None -> die2 (Printf.sprintf "serve: unknown quality %s (draft|quick|full)" qname)
  in
  let t = if base.Funcs.Specs.mode = mode then base else Funcs.Specs.with_mode base mode in
  let cfg =
    if prog then Some { Rlibm.Config.default with progressive = true } else None
  in
  let p =
    match Funcs.Kernels.plan_opt ~quality ?cfg t fname with
    | Some p -> p
    | None -> die2 (Printf.sprintf "serve: no serving kernel for %s on %s" fname tname)
  in
  let src = W.gen p ~mix ~seed ~n in
  Printf.printf "serve: %s %s @%s, %s mix, n=%d batches=%d seed=%d jobs=%s%s\n" tname fname
    (Fp.Rounding_mode.to_string mode)
    (W.mix_to_string mix) n batches seed
    (match jobs with Some j -> string_of_int j | None -> "auto")
    (match p.K.tier with
    | Some tp -> Printf.sprintf " tier=prefix-k%d" tp.(0).K.tk
    | None -> if prog then " tier=full (no certified prefix)" else "");
  let slo = R.measure ?jobs p src ~batches in
  let tier_calls = slo.R.tier_prefix + slo.R.tier_full + slo.R.tier_fallback in
  Printf.printf "calls_per_sec: %.0f\n" slo.R.calls_per_sec;
  Printf.printf "p50_ns: %.1f\n" slo.R.p50_ns;
  Printf.printf "p99_ns: %.1f\n" slo.R.p99_ns;
  Printf.printf "tier_calls: %d prefix / %d full / %d fallback (%.2f%% fast tier)\n"
    slo.R.tier_prefix slo.R.tier_full slo.R.tier_fallback
    (if tier_calls = 0 then 0.0
     else 100.0 *. float_of_int slo.R.tier_prefix /. float_of_int tier_calls);
  (match datafile with
  | None -> ()
  | Some path ->
      (* Libm.get is memoized, so re-fetching the generated tables to
         fingerprint them is free — plan_opt already generated them. *)
      let g = Funcs.Libm.get ~quality ?cfg t fname in
      Datafile.write ~path
        {
          Datafile.rev = Datafile.git_rev ();
          date = Datafile.timestamp ();
          seed = Some seed;
          config =
            Printf.sprintf "serve %s mix, n=%d batches=%d quality=%s%s" (W.mix_to_string mix) n
              batches qname
              (if prog then " prog" else "");
          host =
            Some
              {
                Datafile.jobs = (match jobs with Some j -> j | None -> Parallel.jobs ());
                cpus = Domain.recommended_domain_count ();
                ocaml = Sys.ocaml_version;
              };
          rows =
            [
              {
                Datafile.kind = "serve";
                func = fname;
                repr = tname;
                mode = Fp.Rounding_mode.to_string mode;
                identity = "";
                tables_hash = Rlibm.Generator.tables_fingerprint g;
                span = None;
                metrics =
                  (* The batch size is part of each metric key: SLO
                     numbers at different n are not comparable, and a
                     datafile diff across sizes must refuse loudly
                     (every gated serve.* metric vanishes) instead of
                     quietly comparing apples to oranges. *)
                  ([
                     (Printf.sprintf "serve.n%d.calls_per_sec" n, slo.R.calls_per_sec);
                     (Printf.sprintf "serve.n%d.p50_ns" n, slo.R.p50_ns);
                     (Printf.sprintf "serve.n%d.p99_ns" n, slo.R.p99_ns);
                   ]
                  @
                  match p.K.tier with
                  | None -> []
                  | Some tp ->
                      [
                        ( "prog.fast_pct",
                          if tier_calls = 0 then 0.0
                          else
                            100.0 *. float_of_int slo.R.tier_prefix /. float_of_int tier_calls
                        );
                        ("prog.serve_k", float_of_int tp.(0).K.tk);
                      ]);
                mismatches = [||];
                quarantined = [||];
              };
            ];
        };
      Printf.printf "datafile: %s\n" path);
  if check then begin
    match R.verify p src with
    | None ->
        Printf.printf "bit-identity: ok (%d patterns, kernel = scalar%s)\n" n
          (if Option.is_some p.K.tier then ", tiered = scalar" else "")
    | Some pat ->
        Printf.printf "bit-identity: FAIL at pattern %0*x\n" ((p.K.width + 3) / 4) pat;
        exit 1
  end

open Cmdliner

let jobs =
  Arg.(value & opt (some int) None
       & info [ "j"; "jobs" ] ~doc:"Worker domains (default: RLIBM_JOBS or the runtime's recommendation).")

let tname = Arg.(value & opt string "bfloat16" & info [ "t"; "target" ] ~doc:"Target type.")
let fname = Arg.(value & opt string "log2" & info [ "f"; "function" ] ~doc:"Function name.")

let mname =
  Arg.(value & opt string "rne" & info [ "m"; "mode" ] ~doc:"Rounding mode (rne|rna|up|down|zero).")

let mixname =
  Arg.(value & opt string "uniform"
       & info [ "mix" ] ~doc:"Workload mix: uniform (fast-path), hardcase (special/edge heavy), subnormal.")

let n = Arg.(value & opt int 65536 & info [ "n" ] ~doc:"Calls per batch (the serving unit).")
let batches = Arg.(value & opt int 64 & info [ "batches" ] ~doc:"Batches to replay (after one warm-up).")
let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload generator seed.")

let check =
  Arg.(value & flag
       & info [ "check" ]
           ~doc:"After measuring, verify the kernel is bit-identical to the scalar path on every \
                 workload pattern; exit 1 on mismatch.")

let qname =
  Arg.(value & opt string "full" & info [ "quality" ] ~doc:"Generation quality (draft|quick|full).")

let prog =
  Arg.(value & flag
       & info [ "prog" ]
           ~doc:"Generate progressively and serve the certified coefficient prefix tier \
                 (certificate misses escalate to the full polynomial; outputs stay \
                 bit-identical to the scalar path).")

let datafile =
  Arg.(value & opt (some string) None
       & info [ "datafile" ] ~docv:"PATH"
           ~doc:"Write the run (throughput/latency metrics plus the tables fingerprint the \
                 kernels certify) as a schema-v$(b,1) datafile to $(docv).")

let () =
  let cmd =
    Cmd.v
      (Cmd.info "serve_cli" ~doc:"Replay workload mixes through the zero-allocation serving kernels")
      Term.(const run $ jobs $ tname $ fname $ mname $ mixname $ n $ batches $ seed $ check $ qname
            $ prog $ datafile)
  in
  exit (Cmd.eval cmd)
